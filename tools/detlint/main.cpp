// detlint — the sdsched determinism-contract linter.
//
// Usage:
//   detlint [--src-root <dir>] [--json <path>] [--hash] [--list-rules] <path>...
//
// Each <path> is a file or a directory (scanned recursively for C++
// sources). Rule scoping needs paths *relative to src/*: a directory
// argument is its own scoping root (`detlint src` is the canonical
// invocation); for individual files pass --src-root so e.g.
// `detlint --src-root src src/cluster/machine.cpp` scopes correctly.
// Exit status: 0 when every finding is waived (or there are none), 1 on
// unwaived findings, 2 on usage/IO errors. --json writes a
// `detlint-findings-v1` document for CI artifacts.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"
#include "detlint/ruleset.h"

namespace {

void json_escape_into(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void write_json(const std::string& path,
                const std::vector<detlint::Finding>& findings,
                std::size_t waived, std::size_t unwaived) {
  std::string out;
  out += "{\n  \"schema\": \"detlint-findings-v1\",\n";
  out += "  \"detlint_version\": \"";
  out += detlint::kVersion;
  out += "\",\n  \"ruleset_hash\": \"";
  out += detlint::ruleset_hash();
  out += "\",\n  \"waived\": " + std::to_string(waived);
  out += ",\n  \"unwaived\": " + std::to_string(unwaived);
  out += ",\n  \"findings\": [";
  bool first = true;
  for (const auto& f : findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"file\": \"";
    json_escape_into(out, f.file);
    out += "\", \"line\": " + std::to_string(f.line);
    out += ", \"rule\": \"" + f.rule + "\"";
    out += ", \"waived\": ";
    out += f.waived ? "true" : "false";
    out += ", \"message\": \"";
    json_escape_into(out, f.message);
    out += "\"";
    if (f.waived) {
      out += ", \"reason\": \"";
      json_escape_into(out, f.waiver_reason);
      out += "\"";
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  std::ofstream stream(path, std::ios::binary | std::ios::trunc);
  if (!stream) {
    std::fprintf(stderr, "detlint: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  stream.write(out.data(), static_cast<std::streamsize>(out.size()));
}

int usage() {
  std::fprintf(
      stderr,
      "usage: detlint [--src-root <dir>] [--json <path>] [--hash]\n"
      "               [--list-rules] <file-or-dir>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::string src_root;
  std::string json_path;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--hash") {
      std::printf("%s\n", detlint::ruleset_hash().c_str());
      return 0;
    }
    if (arg == "--version") {
      std::printf("detlint %s (ruleset %s)\n", detlint::kVersion,
                  detlint::ruleset_hash().c_str());
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& rule : detlint::kRules) {
        std::printf("%s  %-30s waiver: // detlint: %s(<reason>)  scope: %s\n",
                    rule.id, rule.name, rule.waiver,
                    rule.scope[0] == '\0' ? "src/**" : rule.scope);
      }
      return 0;
    }
    if (arg == "--src-root") {
      if (++i >= argc) return usage();
      src_root = argv[i];
      continue;
    }
    if (arg == "--json") {
      if (++i >= argc) return usage();
      json_path = argv[i];
      continue;
    }
    if (arg.rfind("--", 0) == 0) return usage();
    inputs.push_back(arg);
  }
  if (inputs.empty()) return usage();

  std::vector<detlint::SourceFile> files;
  std::vector<detlint::Finding> findings;
  try {
    for (const auto& input : inputs) {
      const fs::path path(input);
      if (fs::is_directory(path)) {
        // A directory is its own scoping root: `detlint src` sees
        // cluster/machine.cpp etc. relative to src/, exactly what the rule
        // table's scope prefixes expect.
        auto tree = detlint::analyze_tree(path, input + "/");
        findings.insert(findings.end(), tree.begin(), tree.end());
      } else {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
          std::fprintf(stderr, "detlint: cannot read %s\n", input.c_str());
          return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string rel = input;
        if (!src_root.empty()) {
          rel = fs::relative(path, fs::path(src_root)).generic_string();
        }
        files.push_back(detlint::SourceFile{input, rel, buf.str()});
      }
    }
    if (!files.empty()) {
      auto extra = detlint::analyze(files);
      findings.insert(findings.end(), extra.begin(), extra.end());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detlint: %s\n", e.what());
    return 2;
  }

  std::size_t waived = 0;
  std::size_t unwaived = 0;
  for (const auto& f : findings) {
    if (f.waived) {
      ++waived;
      std::printf("%s:%d: [%s] waived: %s (reason: %s)\n", f.file.c_str(),
                  f.line, f.rule.c_str(), f.message.c_str(),
                  f.waiver_reason.c_str());
    } else {
      ++unwaived;
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
  }
  std::printf("detlint %s (ruleset %s): %zu finding(s), %zu waived, "
              "%zu unwaived\n",
              detlint::kVersion, detlint::ruleset_hash().c_str(),
              waived + unwaived, waived, unwaived);
  if (!json_path.empty()) write_json(json_path, findings, waived, unwaived);
  return unwaived == 0 ? 0 : 1;
}
