// A small C++ lexer for detlint: identifiers, literals, comments and
// punctuation with line numbers, plus a flag marking tokens that belong to a
// preprocessor directive (so `#include <unordered_map>` is never mistaken
// for a declaration). This is deliberately not a full C++ front end — the
// determinism rules are token-shape rules, and a dependency-free lexer keeps
// the tool buildable everywhere the simulator builds (no libclang).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace detlint {

enum class TokKind {
  Identifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  Number,      ///< numeric literal (loosely lexed; detlint never inspects one)
  String,      ///< "..." or R"tag(...)tag" (text excludes quotes)
  CharLit,     ///< '...'
  Punct,       ///< operator / punctuation (see lexer.cpp for multi-char set)
  Comment,     ///< // or /* */ (text excludes the comment markers)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;             ///< 1-based line of the token's first character
  bool in_directive = false;  ///< inside a preprocessor directive line
  bool block_comment = false; ///< Comment kind: true for /* */, false for //
};

/// Tokenize `source`. Never throws on malformed input: an unterminated
/// literal or comment is lexed to end-of-file, which is the useful behaviour
/// for a linter (the compiler will reject the file anyway).
[[nodiscard]] std::vector<Token> lex(std::string_view source);

/// The `>` / `<` tokens are always lexed as single characters (never `>>` /
/// `<<`) so template-argument balancing by token counting works on
/// `unordered_map<int, std::vector<int>>`. `->`, `::` and the compound
/// assignment operators are kept as single tokens. This helper answers
/// "is this token exactly this punctuation".
[[nodiscard]] inline bool is_punct(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::Punct && tok.text == text;
}

[[nodiscard]] inline bool is_ident(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::Identifier && tok.text == text;
}

}  // namespace detlint
