// The detlint analyzer: applies the determinism-contract rules (see
// include/detlint/ruleset.h and docs/determinism.md) to lexed C++ sources.
//
// Analysis is two-phase across the whole file set: phase 1 indexes every
// declaration of an unordered container (locals, members, `using` aliases)
// from *all* files, phase 2 flags rule violations per file — so a member
// declared in a header is recognized when its .cpp iterates it. The indexer
// is deliberately conservative: two members sharing a name are both treated
// as unordered if either is, which can only demand an extra waiver, never
// hide a violation.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "detlint/ruleset.h"

namespace detlint {

struct Finding {
  std::string file;   ///< display path (as passed on the command line)
  int line = 0;       ///< 1-based line the finding anchors to
  std::string rule;   ///< "D1".."D4", or "WAIVER" for waiver-syntax problems
  std::string message;
  bool waived = false;
  std::string waiver_reason;  ///< set when waived
};

struct SourceFile {
  std::string display_path;  ///< for messages
  std::string rel_path;      ///< relative to src/, '/'-separated — rule scoping
  std::string content;
};

/// Analyze the given sources as one program. Findings come back grouped by
/// file in input order, line-ascending within a file.
[[nodiscard]] std::vector<Finding> analyze(const std::vector<SourceFile>& files);

/// Load every *.h/*.hpp/*.cpp/*.cc under `src_root` (sorted path order, so
/// results are deterministic) and analyze them. `rel_path` is each file's
/// path relative to `src_root`; `display_prefix` (e.g. "src/") is prepended
/// for messages. Throws std::runtime_error on IO failure.
[[nodiscard]] std::vector<Finding> analyze_tree(
    const std::filesystem::path& src_root, std::string_view display_prefix);

/// True if `rule` applies to a file at `rel_path` (scope prefixes from the
/// ruleset table; empty scope = everywhere).
[[nodiscard]] bool rule_applies(const RuleInfo& rule, std::string_view rel_path);

[[nodiscard]] inline bool has_unwaived(const std::vector<Finding>& findings) {
  for (const auto& f : findings) {
    if (!f.waived) return true;
  }
  return false;
}

}  // namespace detlint
