#include "analyzer.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "lexer.h"

namespace detlint {

namespace {

// ---------------------------------------------------------------------------
// Small token-stream helpers. All scanning skips comment tokens; literals and
// directive tokens are excluded where the rule calls for it.
// ---------------------------------------------------------------------------

struct Stream {
  const std::vector<Token>& toks;

  /// Index of the next non-comment token at or after `i`, or npos.
  [[nodiscard]] std::size_t next(std::size_t i) const {
    while (i < toks.size() && toks[i].kind == TokKind::Comment) ++i;
    return i < toks.size() ? i : npos;
  }
  /// Index of the next non-comment token strictly after `i`.
  [[nodiscard]] std::size_t after(std::size_t i) const { return next(i + 1); }
  /// Index of the previous non-comment token strictly before `i`, or npos.
  [[nodiscard]] std::size_t before(std::size_t i) const {
    while (i > 0) {
      --i;
      if (toks[i].kind != TokKind::Comment) return i;
    }
    return npos;
  }
  [[nodiscard]] const Token* at(std::size_t i) const {
    return i == npos ? nullptr : &toks[i];
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

template <typename Table>
[[nodiscard]] bool in_table(const Table& table, std::string_view text) {
  for (const auto* entry : table) {
    if (text == entry) return true;
  }
  return false;
}

[[nodiscard]] const RuleInfo& rule_info(std::string_view id) {
  for (const auto& rule : kRules) {
    if (id == rule.id) return rule;
  }
  throw std::logic_error("detlint: unknown rule id");
}

/// Skip a balanced `<...>` template-argument list. `i` indexes the `<`.
/// Returns the index just past the matching `>`, or npos if unbalanced.
[[nodiscard]] std::size_t skip_template_args(const Stream& s, std::size_t i) {
  int depth = 0;
  while (i != Stream::npos && i < s.toks.size()) {
    const Token& tok = s.toks[i];
    if (is_punct(tok, "<")) ++depth;
    if (is_punct(tok, ">")) {
      --depth;
      if (depth == 0) return s.after(i);
    }
    // A `;` or `{` inside an unbalanced scan means this `<` was a comparison.
    if (is_punct(tok, ";") || is_punct(tok, "{")) return Stream::npos;
    i = s.after(i);
  }
  return Stream::npos;
}

// ---------------------------------------------------------------------------
// Waivers: `// detlint: <token>(<reason>)`. The waiver must sit on a line of
// the flagged statement (any line of a multi-line statement) or on the line
// directly above it. Parsed from comment tokens; malformed or stale waivers
// are findings themselves so the annotations cannot rot.
// ---------------------------------------------------------------------------

struct Waiver {
  std::string token;
  std::string reason;
  int line = 0;
  bool used = false;
};

struct WaiverScan {
  std::vector<Waiver> waivers;
  std::vector<Finding> problems;  ///< malformed waivers (rule "WAIVER")
};

[[nodiscard]] WaiverScan scan_waivers(const std::string& display_path,
                                      const std::vector<Token>& toks) {
  WaiverScan out;
  for (const auto& tok : toks) {
    if (tok.kind != TokKind::Comment) continue;
    const std::size_t at = tok.text.find("detlint:");
    if (at == std::string::npos) continue;
    std::string_view rest = std::string_view(tok.text).substr(at + 8);
    // token(reason)
    std::size_t p = 0;
    while (p < rest.size() && std::isspace(static_cast<unsigned char>(rest[p]))) ++p;
    std::size_t q = p;
    while (q < rest.size() &&
           (std::isalnum(static_cast<unsigned char>(rest[q])) || rest[q] == '-' ||
            rest[q] == '_')) {
      ++q;
    }
    const std::string token(rest.substr(p, q - p));
    while (q < rest.size() && std::isspace(static_cast<unsigned char>(rest[q]))) ++q;
    std::string reason;
    bool well_formed = false;
    if (q < rest.size() && rest[q] == '(') {
      const std::size_t close = rest.find(')', q);
      if (close != std::string_view::npos) {
        reason = std::string(rest.substr(q + 1, close - q - 1));
        well_formed = true;
      }
    }
    bool known = false;
    for (const auto& rule : kRules) {
      if (token == rule.waiver) known = true;
    }
    // Trim the reason.
    while (!reason.empty() && std::isspace(static_cast<unsigned char>(reason.front()))) {
      reason.erase(reason.begin());
    }
    while (!reason.empty() && std::isspace(static_cast<unsigned char>(reason.back()))) {
      reason.pop_back();
    }
    if (!well_formed || !known || reason.empty()) {
      std::string why = !well_formed ? "expected `detlint: <token>(<reason>)`"
                        : !known    ? "unknown waiver token '" + token + "'"
                                    : "empty reason";
      out.problems.push_back(Finding{display_path, tok.line, "WAIVER",
                                     "malformed waiver: " + why, false, ""});
      continue;
    }
    out.waivers.push_back(Waiver{token, reason, tok.line, false});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Phase 1: index unordered-container declarations across the whole file set.
// ---------------------------------------------------------------------------

struct UnorderedIndex {
  std::set<std::string> type_tokens;  ///< base names + `using` aliases
  std::set<std::string> names;        ///< declared variables / members
};

void index_file(const std::vector<Token>& toks, UnorderedIndex& index) {
  const Stream s{toks};
  // `using Alias = [std::]unordered_map<...>` — record the alias as a type.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::Identifier || tok.in_directive) continue;
    if (!in_table(kUnorderedTypeTokens, tok.text)) continue;
    std::size_t back = s.before(i);
    if (s.at(back) != nullptr && is_punct(*s.at(back), "::")) {
      const std::size_t std_tok = s.before(back);
      if (s.at(std_tok) != nullptr && is_ident(*s.at(std_tok), "std")) {
        back = s.before(std_tok);
      }
    }
    const std::size_t eq = back;
    if (s.at(eq) == nullptr || !is_punct(*s.at(eq), "=")) continue;
    const std::size_t alias = s.before(eq);
    const std::size_t kw = alias == Stream::npos ? Stream::npos : s.before(alias);
    if (s.at(alias) != nullptr && s.at(alias)->kind == TokKind::Identifier &&
        s.at(kw) != nullptr && is_ident(*s.at(kw), "using")) {
      index.type_tokens.insert(s.at(alias)->text);
    }
  }
  // Declarations: `<type-token> [<...>] [&*const]* name`.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::Identifier || tok.in_directive) continue;
    if (!in_table(kUnorderedTypeTokens, tok.text) &&
        index.type_tokens.find(tok.text) == index.type_tokens.end()) {
      continue;
    }
    std::size_t j = s.after(i);
    if (s.at(j) != nullptr && is_punct(*s.at(j), "<")) {
      j = skip_template_args(s, j);
    }
    while (s.at(j) != nullptr &&
           (is_punct(*s.at(j), "&") || is_punct(*s.at(j), "*") ||
            is_ident(*s.at(j), "const"))) {
      j = s.after(j);
    }
    const Token* name = s.at(j);
    if (name == nullptr || name->kind != TokKind::Identifier) continue;
    // `>::iterator` handled above would have bailed via `::` not matching;
    // also skip keywords that can follow a type in expressions.
    if (name->text == "const" || name->text == "typename") continue;
    index.names.insert(name->text);
  }
}

// ---------------------------------------------------------------------------
// Per-finding span + waiver application.
// ---------------------------------------------------------------------------

struct PendingFinding {
  Finding finding;
  int span_first = 0;  ///< first line of the flagged statement
  int span_last = 0;   ///< last line of the flagged statement
  const char* waiver_token = nullptr;
};

void apply_waivers(std::vector<PendingFinding>& pending,
                   std::vector<Waiver>& waivers, std::vector<Finding>& out) {
  for (auto& p : pending) {
    for (auto& w : waivers) {
      if (w.token != p.waiver_token) continue;
      if (w.line < p.span_first - 1 || w.line > p.span_last) continue;
      p.finding.waived = true;
      p.finding.waiver_reason = w.reason;
      w.used = true;
      break;
    }
    out.push_back(p.finding);
  }
}

// ---------------------------------------------------------------------------
// Rule D1 — unordered iteration in decision-path code.
// ---------------------------------------------------------------------------

void check_d1(const SourceFile& file, const std::vector<Token>& toks,
              const UnorderedIndex& index, std::vector<PendingFinding>& pending) {
  const RuleInfo& rule = rule_info("D1");
  if (!rule_applies(rule, file.rel_path)) return;
  const Stream s{toks};

  auto is_unordered_name = [&](const Token& tok) {
    return tok.kind == TokKind::Identifier &&
           index.names.find(tok.text) != index.names.end();
  };
  auto is_unordered_type = [&](const Token& tok) {
    return tok.kind == TokKind::Identifier &&
           (in_table(kUnorderedTypeTokens, tok.text) ||
            index.type_tokens.find(tok.text) != index.type_tokens.end());
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.in_directive || tok.kind == TokKind::Comment ||
        tok.kind == TokKind::String) {
      continue;
    }

    // Range-for over an unordered container (or a call returning one).
    if (is_ident(tok, "for")) {
      std::size_t j = s.after(i);
      if (s.at(j) == nullptr || !is_punct(*s.at(j), "(")) continue;
      int depth = 0;
      std::size_t colon = Stream::npos;
      std::size_t close = Stream::npos;
      for (; j < toks.size(); j = s.after(j)) {
        const Token& t = toks[j];
        if (is_punct(t, "(")) ++depth;
        if (is_punct(t, ")")) {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (depth == 1 && is_punct(t, ";")) break;  // classic for
        if (depth == 1 && is_punct(t, ":") && colon == Stream::npos) colon = j;
      }
      if (colon == Stream::npos || close == Stream::npos) continue;
      std::string hit;
      for (std::size_t k = s.after(colon); k != Stream::npos && k < close;
           k = s.after(k)) {
        if (is_unordered_name(toks[k]) || is_unordered_type(toks[k])) {
          hit = toks[k].text;
          break;
        }
      }
      if (hit.empty()) continue;
      PendingFinding p;
      p.finding = Finding{file.display_path, tok.line, "D1",
                          "range-for over unordered container '" + hit +
                              "' in decision-path code (iteration order is "
                              "implementation-defined)",
                          false, ""};
      p.span_first = tok.line;
      p.span_last = toks[close].line;
      p.waiver_token = rule.waiver;
      pending.push_back(std::move(p));
      continue;
    }

    // name.begin() / name->begin() and friends.
    if (is_unordered_name(tok)) {
      const std::size_t dot = s.after(i);
      if (s.at(dot) == nullptr ||
          !(is_punct(*s.at(dot), ".") || is_punct(*s.at(dot), "->"))) {
        continue;
      }
      const std::size_t fn = s.after(dot);
      const Token* fn_tok = s.at(fn);
      if (fn_tok == nullptr || fn_tok->kind != TokKind::Identifier) continue;
      if (fn_tok->text != "begin" && fn_tok->text != "cbegin" &&
          fn_tok->text != "rbegin" && fn_tok->text != "crbegin") {
        continue;
      }
      const std::size_t paren = s.after(fn);
      if (s.at(paren) == nullptr || !is_punct(*s.at(paren), "(")) continue;
      PendingFinding p;
      p.finding = Finding{file.display_path, tok.line, "D1",
                          "iterator over unordered container '" + tok.text +
                              "' (." + fn_tok->text +
                              "()) in decision-path code",
                          false, ""};
      p.span_first = tok.line;
      p.span_last = toks[paren].line;
      p.waiver_token = rule.waiver;
      pending.push_back(std::move(p));
      continue;
    }

    // std::begin(name) / begin(name).
    if (tok.kind == TokKind::Identifier &&
        (tok.text == "begin" || tok.text == "cbegin" || tok.text == "rbegin" ||
         tok.text == "crbegin")) {
      const std::size_t paren = s.after(i);
      if (s.at(paren) == nullptr || !is_punct(*s.at(paren), "(")) continue;
      const std::size_t arg = s.after(paren);
      if (s.at(arg) == nullptr || !is_unordered_name(*s.at(arg))) continue;
      PendingFinding p;
      p.finding = Finding{file.display_path, tok.line, "D1",
                          "free " + tok.text + "() over unordered container '" +
                              s.at(arg)->text + "' in decision-path code",
                          false, ""};
      p.span_first = tok.line;
      p.span_last = s.at(arg)->line;
      p.waiver_token = rule.waiver;
      pending.push_back(std::move(p));
    }
  }
}

// ---------------------------------------------------------------------------
// Rule D2 — nondeterminism sources anywhere in src/.
// ---------------------------------------------------------------------------

void check_d2(const SourceFile& file, const std::vector<Token>& toks,
              std::vector<PendingFinding>& pending) {
  const RuleInfo& rule = rule_info("D2");
  if (!rule_applies(rule, file.rel_path)) return;
  const Stream s{toks};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::Identifier || tok.in_directive) continue;

    std::string what;
    if (in_table(kBannedTypeTokens, tok.text)) {
      what = "'" + tok.text + "' (nondeterministic / wall-clock source)";
    } else if (in_table(kBannedCallTokens, tok.text)) {
      const std::size_t paren = s.after(i);
      if (s.at(paren) != nullptr && is_punct(*s.at(paren), "(")) {
        what = "call to '" + tok.text +
               "' (nondeterministic, wall-clock, or locale-dependent)";
      }
    } else if (is_ident(tok, "locale")) {
      // std::locale — only the qualified spelling, to spare identifiers that
      // merely contain the word.
      const std::size_t colons = s.before(i);
      const std::size_t std_tok =
          colons == Stream::npos ? Stream::npos : s.before(colons);
      if (s.at(colons) != nullptr && is_punct(*s.at(colons), "::") &&
          s.at(std_tok) != nullptr && is_ident(*s.at(std_tok), "std")) {
        what = "'std::locale' (locale-dependent formatting)";
      }
    }
    if (what.empty()) continue;
    PendingFinding p;
    p.finding = Finding{file.display_path, tok.line, "D2",
                        what + " — sdsched uses seeded engines and sim-time "
                               "only",
                        false, ""};
    p.span_first = tok.line;
    p.span_last = tok.line;
    p.waiver_token = rule.waiver;
    pending.push_back(std::move(p));
  }
}

// ---------------------------------------------------------------------------
// Rule D3 — RTTI in decision-path code.
// ---------------------------------------------------------------------------

void check_d3(const SourceFile& file, const std::vector<Token>& toks,
              std::vector<PendingFinding>& pending) {
  const RuleInfo& rule = rule_info("D3");
  if (!rule_applies(rule, file.rel_path)) return;
  for (const auto& tok : toks) {
    if (tok.kind != TokKind::Identifier || tok.in_directive) continue;
    if (!in_table(kRttiTokens, tok.text)) continue;
    PendingFinding p;
    p.finding = Finding{file.display_path, tok.line, "D3",
                        "'" + tok.text +
                            "' in decision-path code — use the annotate()/"
                            "virtual-dispatch seam instead of RTTI",
                        false, ""};
    p.span_first = tok.line;
    p.span_last = tok.line;
    p.waiver_token = rule.waiver;
    pending.push_back(std::move(p));
  }
}

// ---------------------------------------------------------------------------
// Rule D4 — occupancy mutators must reference the MachineObserver notify
// path. Function extents come from a brace-classification walk: a `{` is a
// function body when the tokens since the previous `;`/`{`/`}` contain a
// `(` and end plausibly (`)`, `}`, or a trailing qualifier) — this covers
// out-of-class definitions, constructors with paren init-lists, and inline
// class-body methods. Known limitation (documented in docs/determinism.md):
// a constructor whose *last* member initializer uses brace syntax hides the
// body from the classifier.
// ---------------------------------------------------------------------------

enum class BraceKind { Namespace, Class, Function, Other };

struct FunctionExtent {
  std::string name;
  int header_line = 0;
  int open_line = 0;
  std::size_t open_index = 0;
  std::size_t close_index = 0;  ///< index of matching '}'
};

[[nodiscard]] BraceKind classify_brace(const Stream& s, std::size_t brace,
                                       std::string* name_out, int* header_line) {
  // Window: tokens since the previous `;`, `{`, `}` (exclusive).
  std::vector<std::size_t> window;
  std::size_t k = s.before(brace);
  while (k != Stream::npos) {
    const Token& t = s.toks[k];
    if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) break;
    window.push_back(k);
    k = s.before(k);
  }
  std::reverse(window.begin(), window.end());
  if (window.empty()) return BraceKind::Other;
  *header_line = s.toks[window.front()].line;

  bool has_paren = false;
  bool has_class_kw = false;
  std::size_t first_paren = Stream::npos;
  for (const std::size_t idx : window) {
    const Token& t = s.toks[idx];
    if (is_punct(t, "(") && first_paren == Stream::npos) first_paren = idx;
    if (is_punct(t, "(")) has_paren = true;
    if (t.kind == TokKind::Identifier &&
        (t.text == "class" || t.text == "struct" || t.text == "union" ||
         t.text == "enum")) {
      has_class_kw = true;
    }
    if (is_ident(t, "namespace")) return BraceKind::Namespace;
  }
  const Token& last = s.toks[window.back()];
  if (has_class_kw && !is_punct(last, ")")) return BraceKind::Class;
  const bool plausible_tail =
      is_punct(last, ")") || is_punct(last, "}") || is_ident(last, "const") ||
      is_ident(last, "noexcept") || is_ident(last, "override") ||
      is_ident(last, "final") || is_ident(last, "mutable") ||
      is_ident(last, "try");
  if (has_paren && plausible_tail) {
    if (name_out != nullptr && first_paren != Stream::npos) {
      const std::size_t name_idx = s.before(first_paren);
      if (s.at(name_idx) != nullptr &&
          s.at(name_idx)->kind == TokKind::Identifier) {
        *name_out = s.at(name_idx)->text;
      }
    }
    return BraceKind::Function;
  }
  return BraceKind::Other;
}

/// Index of the `}` matching the `{` at `open` (comment tokens ignored).
[[nodiscard]] std::size_t matching_close(const Stream& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.toks.size(); i = s.after(i)) {
    if (is_punct(s.toks[i], "{")) ++depth;
    if (is_punct(s.toks[i], "}")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return Stream::npos;
}

void collect_functions(const Stream& s, std::vector<FunctionExtent>& out) {
  for (std::size_t i = 0; i < s.toks.size(); i = s.after(i)) {
    if (!is_punct(s.toks[i], "{")) continue;
    std::string name = "(anonymous)";
    int header_line = s.toks[i].line;
    const BraceKind kind = classify_brace(s, i, &name, &header_line);
    if (kind == BraceKind::Function) {
      const std::size_t close = matching_close(s, i);
      if (close == Stream::npos) return;  // unbalanced: give up quietly
      out.push_back(FunctionExtent{name, header_line, s.toks[i].line, i, close});
      i = close;  // function bodies are opaque: no nested classification
    }
    // Namespace / class / other: keep walking inside.
  }
}

void check_d4(const SourceFile& file, const std::vector<Token>& toks,
              std::vector<PendingFinding>& pending) {
  const RuleInfo& rule = rule_info("D4");
  if (!rule_applies(rule, file.rel_path)) return;
  const Stream s{toks};
  std::vector<FunctionExtent> functions;
  collect_functions(s, functions);

  for (const auto& fn : functions) {
    std::string mutation;
    bool has_notify = false;
    for (std::size_t i = s.after(fn.open_index);
         i != Stream::npos && i < fn.close_index; i = s.after(i)) {
      const Token& tok = toks[i];
      if (tok.kind != TokKind::Identifier) continue;
      if (in_table(kNotifyTokens, tok.text)) {
        if (tok.text == "on_node_occupancy_changed") {
          has_notify = true;
        } else {
          const std::size_t paren = s.after(i);
          if (s.at(paren) != nullptr && is_punct(*s.at(paren), "(")) {
            has_notify = true;
          }
        }
        continue;
      }
      if (!mutation.empty()) continue;
      if (in_table(kOccupancyMutationCalls, tok.text)) {
        const std::size_t paren = s.after(i);
        if (s.at(paren) != nullptr && is_punct(*s.at(paren), "(")) {
          mutation = tok.text + "()";
        }
        continue;
      }
      if (!in_table(kOccupancyMutationMembers, tok.text)) continue;
      const std::size_t nxt = s.after(i);
      const Token* n = s.at(nxt);
      if (n == nullptr) continue;
      if (tok.text == "free_nodes_" && (is_punct(*n, ".") || is_punct(*n, "->"))) {
        const Token* call = s.at(s.after(nxt));
        if (call != nullptr &&
            (call->text == "insert" || call->text == "erase" ||
             call->text == "clear" || call->text == "emplace" ||
             call->text == "extract" || call->text == "merge" ||
             call->text == "swap")) {
          mutation = tok.text + "." + call->text + "()";
        }
      } else if (tok.text == "busy_cores_") {
        const Token* prev = s.at(s.before(i));
        const bool mutating =
            is_punct(*n, "=") || is_punct(*n, "+=") || is_punct(*n, "-=") ||
            is_punct(*n, "++") || is_punct(*n, "--") ||
            (prev != nullptr && (is_punct(*prev, "++") || is_punct(*prev, "--")));
        if (mutating) mutation = tok.text + " write";
      }
    }
    if (mutation.empty() || has_notify) continue;
    PendingFinding p;
    p.finding = Finding{file.display_path, fn.header_line, "D4",
                        "function '" + fn.name + "' mutates occupancy (" +
                            mutation +
                            ") without referencing the MachineObserver "
                            "notify path — subscribed indexes would go stale",
                        false, ""};
    p.span_first = fn.header_line;
    p.span_last = fn.open_line;
    p.waiver_token = rule.waiver;
    pending.push_back(std::move(p));
  }
}

}  // namespace

bool rule_applies(const RuleInfo& rule, std::string_view rel_path) {
  const std::string_view scope = rule.scope;
  if (scope.empty()) return true;
  std::size_t start = 0;
  while (start <= scope.size()) {
    std::size_t comma = scope.find(',', start);
    if (comma == std::string_view::npos) comma = scope.size();
    const std::string_view prefix = scope.substr(start, comma - start);
    if (!prefix.empty() &&
        (rel_path == prefix || rel_path.substr(0, prefix.size()) == prefix)) {
      return true;
    }
    start = comma + 1;
  }
  return false;
}

std::vector<Finding> analyze(const std::vector<SourceFile>& files) {
  // Phase 1: global unordered-container declaration index.
  std::vector<std::vector<Token>> token_streams;
  token_streams.reserve(files.size());
  UnorderedIndex index;
  for (const auto& file : files) {
    token_streams.push_back(lex(file.content));
    index_file(token_streams.back(), index);
  }

  // Phase 2: per-file rule checks + waiver application.
  std::vector<Finding> out;
  for (std::size_t f = 0; f < files.size(); ++f) {
    const auto& file = files[f];
    const auto& toks = token_streams[f];
    WaiverScan waiver_scan = scan_waivers(file.display_path, toks);

    std::vector<PendingFinding> pending;
    check_d1(file, toks, index, pending);
    check_d2(file, toks, pending);
    check_d3(file, toks, pending);
    check_d4(file, toks, pending);
    std::stable_sort(pending.begin(), pending.end(),
                     [](const PendingFinding& a, const PendingFinding& b) {
                       return a.finding.line < b.finding.line;
                     });

    std::vector<Finding> file_findings;
    apply_waivers(pending, waiver_scan.waivers, file_findings);
    for (const auto& w : waiver_scan.waivers) {
      if (!w.used) {
        file_findings.push_back(
            Finding{file.display_path, w.line, "WAIVER",
                    "stale waiver '" + w.token +
                        "': no matching finding on this statement — delete it",
                    false, ""});
      }
    }
    for (auto& problem : waiver_scan.problems) {
      file_findings.push_back(std::move(problem));
    }
    std::stable_sort(file_findings.begin(), file_findings.end(),
                     [](const Finding& a, const Finding& b) {
                       return a.line < b.line;
                     });
    out.insert(out.end(), file_findings.begin(), file_findings.end());
  }
  return out;
}

std::vector<Finding> analyze_tree(const std::filesystem::path& src_root,
                                  std::string_view display_prefix) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("detlint: cannot read " + path.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string rel = fs::relative(path, src_root).generic_string();
    files.push_back(
        SourceFile{std::string(display_prefix) + rel, rel, buf.str()});
  }
  return analyze(files);
}

}  // namespace detlint
