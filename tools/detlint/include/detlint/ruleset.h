// The detlint determinism-contract ruleset, as pure data.
//
// This header is the single source of truth for what detlint enforces: the
// rule ids, their waiver tokens, their file scopes, and the banned-token
// tables. The analyzer consumes these tables directly, and `ruleset_hash()`
// folds every byte of them (plus the tool version) into one FNV-1a value —
// so the hash stamped into `sdsched-bench-v1` JSON headers identifies the
// exact contract a bench artifact was produced under. Change a rule and the
// hash changes; byte-compare two artifacts only if their hashes match.
//
// Header-only and dependency-free on purpose: the bench programs include it
// without linking the analyzer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace detlint {

/// Tool version. Bump on any behaviour change (rules, waiver syntax, lexing).
inline constexpr const char* kVersion = "1.0.0";

/// Directories (relative to src/) that constitute decision-path code: every
/// scheduling decision flows through them, so iteration order and RTTI there
/// are part of the byte-identical-parity contract.
inline constexpr const char* kDecisionPathDirs[] = {
    "sched/",
    "cluster/",
    "core/",
    "sim/",
};

struct RuleInfo {
  const char* id;      ///< "D1".."D4"
  const char* name;    ///< short kebab-case name
  const char* waiver;  ///< token accepted in `// detlint: <waiver>(<reason>)`
  const char* scope;   ///< comma-separated path prefixes relative to src/;
                       ///< "" means every analyzed file
};

inline constexpr RuleInfo kRules[] = {
    {"D1", "unordered-iteration", "ordered-ok", "sched/,cluster/,core/,sim/"},
    {"D2", "nondeterminism-source", "nondet-ok", ""},
    {"D3", "rtti-in-decision-path", "rtti-ok", "sched/,cluster/,core/,sim/"},
    {"D4", "unobserved-occupancy-mutation", "mutator-ok",
     "cluster/machine.cpp,cluster/machine.h"},
};

/// D1: container-type tokens whose iteration order is implementation-defined.
inline constexpr const char* kUnorderedTypeTokens[] = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
};

/// D2: banned only in call position (`token(`) — common enough words that a
/// bare-identifier match would false-positive.
inline constexpr const char* kBannedCallTokens[] = {
    "rand",      "srand",       "rand_r",     "drand48",  "lrand48",
    "localtime", "localtime_r", "gmtime",     "strftime", "asctime",
    "ctime",     "mktime",      "setlocale",  "localeconv", "imbue",
};

/// D2: banned on any identifier occurrence (type-like names; no legitimate
/// non-banned spelling exists in this codebase). `steady_clock` is
/// deliberately absent: it is monotonic and only ever feeds wall-clock
/// *measurement* (never decisions), which the parity contract permits.
inline constexpr const char* kBannedTypeTokens[] = {
    "random_device",
    "system_clock",
    "high_resolution_clock",  // commonly an alias of system_clock
};

/// D3: RTTI tokens banned in decision-path code (the PR 2 `annotate()`
/// virtual replaced the last `dynamic_cast`; this pins that fix).
inline constexpr const char* kRttiTokens[] = {
    "dynamic_cast",
    "typeid",
};

/// D4: occupancy-mutation markers. A function body in the D4 scope that
/// contains one of these must also reference the notify path below.
inline constexpr const char* kOccupancyMutationMembers[] = {
    "free_nodes_",  // mutating member calls: .insert/.erase/.clear
    "busy_cores_",  // assignment / compound assignment / inc / dec
};
inline constexpr const char* kOccupancyMutationCalls[] = {
    "sync_free_state",
};
inline constexpr const char* kNotifyTokens[] = {
    "notify",
    "on_node_occupancy_changed",
};

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a(std::string_view text,
                              std::uint64_t hash = kFnvOffset) noexcept {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// FNV-1a over the version and every rule-table entry, in declaration order.
/// Stable across platforms; stamped into bench JSON as `detlint_ruleset_hash`.
constexpr std::uint64_t ruleset_hash_value() noexcept {
  std::uint64_t hash = fnv1a(kVersion);
  for (const auto* dir : kDecisionPathDirs) hash = fnv1a(dir, fnv1a("|", hash));
  for (const auto& rule : kRules) {
    hash = fnv1a(rule.id, fnv1a("|", hash));
    hash = fnv1a(rule.name, fnv1a("|", hash));
    hash = fnv1a(rule.waiver, fnv1a("|", hash));
    hash = fnv1a(rule.scope, fnv1a("|", hash));
  }
  for (const auto* t : kUnorderedTypeTokens) hash = fnv1a(t, fnv1a("|", hash));
  for (const auto* t : kBannedCallTokens) hash = fnv1a(t, fnv1a("|", hash));
  for (const auto* t : kBannedTypeTokens) hash = fnv1a(t, fnv1a("|", hash));
  for (const auto* t : kRttiTokens) hash = fnv1a(t, fnv1a("|", hash));
  for (const auto* t : kOccupancyMutationMembers) hash = fnv1a(t, fnv1a("|", hash));
  for (const auto* t : kOccupancyMutationCalls) hash = fnv1a(t, fnv1a("|", hash));
  for (const auto* t : kNotifyTokens) hash = fnv1a(t, fnv1a("|", hash));
  return hash;
}

/// Lower-case hex spelling of ruleset_hash_value(), e.g. "a1b2c3d4e5f60718".
inline std::string ruleset_hash() {
  constexpr char digits[] = "0123456789abcdef";
  std::uint64_t value = ruleset_hash_value();
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace detlint
